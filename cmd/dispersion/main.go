// Command dispersion runs a dispersion process on a chosen graph family
// and reports dispersion-time statistics. The per-trial results can also
// be persisted through the dispersion/sink writers.
//
// Usage:
//
//	dispersion -graph complete:256 -process par -trials 200 -seed 1
//	dispersion -graph torus:16x16 -process seq -origin 0 -lazy
//	dispersion -graph regular:512,4 -process ctu -trials 100
//	dispersion -graph torus:16x16 -process cap -capacity 4 -trials 200
//	dispersion -graph hair:96 -process thresh -settle-param 1500 -trials 50
//	dispersion -graph complete:256 -trials 1000 -csv trials.csv -jsonl trials.jsonl
//	dispersion -graph complete:256 -trials 100000 -summary summary.json
//
// Graph specs: path:N cycle:N complete:N star:N hypercube:K bintree:LEVELS
// lollipop:N hair:N pimple:N,H treepath:LEVELS,PATHLEN grid:AxB torus:AxB
// circulant:N,S1[,S2...] rregular:N,D regular:N,D gnp:N,P tree:N
// wcomplete:N,ALPHA wcycle:N,B. The arithmetic families (torus,
// circulant, rregular, and the closed forms) build implicit backends, so
// million-vertex sizes run in O(particles) memory — e.g. -graph
// torus:2048x2048 -particles 4096. The w-prefixed families are weighted
// (alias-table walk kernels); add -batch to run the Sequential-family
// processes through the batched lane scheduler.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"dispersion"
	"dispersion/graphspec"
	"dispersion/internal/stats"
	"dispersion/sink"
)

func main() {
	var (
		graphSpec = flag.String("graph", "complete:128", "graph family spec (see package doc)")
		process   = flag.String("process", "seq",
			"process: seq|par|unif|ctu|ctseq|geom|thresh|cap|cap-par (or a lazy- prefix)")
		origin        = flag.Int("origin", 0, "origin vertex")
		trials        = flag.Int("trials", 100, "number of independent trials")
		seed          = flag.Uint64("seed", 1, "random seed (reproducible)")
		lazy          = flag.Bool("lazy", false, "use lazy random walks")
		particles     = flag.Int("particles", 0, "disperse k particles instead of the default (0 = default)")
		randomOrigins = flag.Bool("random-origins", false, "sample each particle's origin uniformly")
		settleParam   = flag.Float64("settle-param", 0,
			"settle-rule parameter: geom's settle probability, thresh's minimum steps (0 = process default)")
		capacity = flag.Int("capacity", 0,
			"per-vertex capacity of the capacity processes (0 = default 2)")
		batch = flag.Int("batch", 0,
			"run trials through the batched lane scheduler, this many lanes per block (0 = scalar)")
		csvPath     = flag.String("csv", "", "write per-trial scalar rows as CSV to this file")
		jsonlPath   = flag.String("jsonl", "", "write full per-trial results as JSONL to this file")
		summaryPath = flag.String("summary", "", `write the mergeable agg.Summary JSON to this file ("-" = stdout)`)
		quiet       = flag.Bool("q", false, "print only the mean dispersion time")
	)
	flag.Parse()

	g, err := graphspec.Build(*graphSpec, *seed)
	if err != nil {
		fatal(err)
	}
	p, err := dispersion.Lookup(*process)
	if err != nil {
		fatal(err)
	}
	var opts []dispersion.Option
	if *lazy {
		opts = append(opts, dispersion.WithLazy())
	}
	if *particles > 0 {
		opts = append(opts, dispersion.WithParticles(*particles))
	}
	if *randomOrigins {
		opts = append(opts, dispersion.WithRandomOrigins())
	}
	if *settleParam != 0 {
		opts = append(opts, dispersion.WithSettleParam(*settleParam))
	}
	if *capacity != 0 {
		opts = append(opts, dispersion.WithCapacity(*capacity))
	}
	if *batch != 0 {
		opts = append(opts, dispersion.WithBatch(*batch))
	}

	// The run streams every trial through one callback: makespan
	// collection for the statistics below, teed with the requested sinks.
	var (
		writers []sink.Writer
		flush   []func() error
	)
	for _, sel := range []struct {
		path string
		open func(f *os.File)
	}{
		{*csvPath, func(f *os.File) {
			cw := sink.NewCSV(f)
			writers = append(writers, cw)
			flush = append(flush, cw.Flush)
		}},
		{*jsonlPath, func(f *os.File) {
			writers = append(writers, sink.NewJSONL(f))
		}},
	} {
		if sel.path == "" {
			continue
		}
		f, err := os.Create(sel.path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sel.open(f)
	}
	var aggregator *sink.Aggregator
	if *summaryPath != "" {
		aggregator = sink.NewAggregator()
		writers = append(writers, aggregator)
	}
	each := sink.Tee(writers...)

	xs := make([]float64, 0, *trials)
	eng := dispersion.Engine{Seed: *seed, Experiment: 0xd15b}
	err = eng.Run(context.Background(), dispersion.Job{
		Process: p.Name(),
		Graph:   g,
		Origin:  *origin,
		Trials:  *trials,
		Options: opts,
	}, func(t dispersion.Trial) error {
		xs = append(xs, t.Result.Makespan())
		return each(t)
	})
	// Flush buffered sink rows even when the run failed, so completed
	// trials are not lost; the run error still wins the exit status.
	for _, fl := range flush {
		if ferr := fl(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		fatal(err)
	}
	if aggregator != nil {
		out := os.Stdout
		if *summaryPath != "-" {
			f, err := os.Create(*summaryPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := sink.WriteSummary(out, aggregator.Summary()); err != nil {
			fatal(err)
		}
	}

	s := stats.Summarize(xs)
	if *quiet {
		fmt.Printf("%.6g\n", s.Mean)
		return
	}
	lo, hi := s.CI95()
	fmt.Printf("graph        %s (n=%d, m=%d)\n", g.Name(), g.N(), edgeCount(g))
	fmt.Printf("process      %s (lazy=%v), origin %d, %d trials, seed %d\n",
		p.Name(), *lazy, *origin, *trials, *seed)
	fmt.Printf("dispersion   mean %.4g   95%% CI [%.4g, %.4g]\n", s.Mean, lo, hi)
	fmt.Printf("             median %.4g   min %.4g   max %.4g   sd %.4g\n",
		s.Median, s.Min, s.Max, s.StdDev)
	fmt.Printf("normalised   t/n = %.4g   t/(n ln n) = %.4g\n",
		s.Mean/float64(g.N()), s.Mean/(float64(g.N())*math.Log(float64(g.N()))))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dispersion:", err)
	os.Exit(2)
}

// edgeCount sums degrees in O(n) without touching adjacency, so the
// banner works for implicit backends that never store edges.
func edgeCount(g dispersion.Graph) int64 {
	var sum int64
	for v := 0; v < g.N(); v++ {
		sum += int64(g.Degree(v))
	}
	return sum / 2
}
