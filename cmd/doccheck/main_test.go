package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a Go file into the synthetic tree.
func write(t *testing.T, dir, name, src string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// The checker flags undocumented exported symbols and missing package
// comments, honours group docs, skips internal packages, test files, and
// the exported symbols of main packages.
func TestCheck(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `package p

type Undoc struct{}

func (Undoc) M() {}

func (unexported) N() {}

// Documented needs no flag.
func Documented() {}

// Grouped docs cover every member.
const (
	A = 1
	B = 2
)

var V = 3

type unexported int
`)
	write(t, dir, "a_test.go", `package p

func ExportedTestHelper() {}
`)
	write(t, dir, "internal/h/h.go", `package h

func Hidden() {}
`)
	write(t, dir, "cmd/x/main.go", `// Command x is documented.
package main

func ExportedInMain() {}

func main() {}
`)
	got, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"package p has no package comment",
		"type Undoc is exported but undocumented",
		"method M is exported but undocumented",
		"var V is exported but undocumented",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d problems, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing problem %q in:\n%s", w, strings.Join(got, "\n"))
		}
	}
}

// The repository itself must stay at the documentation bar the CI step
// enforces.
func TestRepositoryIsClean(t *testing.T) {
	root, err := findModuleRoot()
	if err != nil {
		t.Skipf("module root: %v", err)
	}
	problems, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Errorf("undocumented exported symbols:\n%s", strings.Join(problems, "\n"))
	}
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
