// Command doccheck enforces the repository's documentation bar: every
// public (non-internal) package must carry a package comment, and every
// exported top-level symbol of every public library package — types,
// functions, methods on exported types, consts and vars — must have a
// godoc comment. CI runs it after go vet; it exits non-zero listing every
// gap.
//
// Usage:
//
//	doccheck [dir]    # dir defaults to "."
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	problems, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbol(s)\n", len(problems))
		os.Exit(1)
	}
}

// check walks every public package under root and returns one line per
// missing doc comment, sorted by position.
func check(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name != "." && (strings.HasPrefix(name, ".") || name == "internal" || name == "testdata") {
			if path != root {
				return filepath.SkipDir
			}
		}
		ps, err := checkDir(path)
		if err != nil {
			return err
		}
		problems = append(problems, ps...)
		return nil
	})
	sort.Strings(problems)
	return problems, err
}

// checkDir inspects the single package (if any) in one directory.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasDoc = true
			}
		}
		if !hasDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		if pkg.Name == "main" {
			// Commands only need the package comment; their symbols are
			// not importable.
			continue
		}
		for file, f := range pkg.Files {
			problems = append(problems, checkFile(fset, file, f)...)
		}
	}
	return problems, nil
}

// checkFile reports every exported top-level symbol of one file that
// lacks a doc comment.
func checkFile(fset *token.FileSet, file string, f *ast.File) []string {
	var problems []string
	missing := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s %s is exported but undocumented", file, p.Line, what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				missing(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			// A doc comment on the group (const/var/type block) covers
			// every member; otherwise each exported spec needs its own.
			if d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						missing(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							missing(s.Pos(), kindOf(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverExported reports whether a method's receiver type is exported
// (true for plain functions).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// kindOf names a value declaration for the report.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
