package main

import (
	"fmt"
	"io"
	"sort"

	"dispersion/internal/stats"
)

// gateOptions configure the regression gate.
type gateOptions struct {
	// alpha is the significance level of the one-sided Mann-Whitney
	// test: a configuration only regresses if the chance of seeing its
	// slowdown under "no change" is below alpha.
	alpha float64
	// threshold is the minimum material slowdown: the new median must
	// exceed the old by more than this fraction. Statistical
	// significance alone is not enough — with tight samples a 0.1%
	// slowdown can be significant yet meaningless.
	threshold float64
}

// gateVerdict is one configuration's comparison outcome.
type gateVerdict struct {
	name           string
	oldMed, newMed float64
	ratio, p       float64
	slower, allocs bool
	faster         bool
	allocsOld      float64
	allocsNew      float64
}

// regressed reports whether the configuration fails the gate.
func (v gateVerdict) regressed() bool { return v.slower || v.allocs }

// verdict renders the outcome column.
func (v gateVerdict) verdict() string {
	switch {
	case v.slower && v.allocs:
		return "slower!+allocs!"
	case v.slower:
		return "slower!"
	case v.allocs:
		return "allocs!"
	case v.faster:
		return "faster"
	}
	return "ok"
}

// runGate compares two benchlab reports and writes the verdict table to
// w, returning the number of statistically significant regressions (the
// caller's exit status). Configurations present in only one report never
// fail the gate: new ones pass with a note (a benchmark appearing cannot
// be a regression), removed ones are noted so a silently dropped
// benchmark is visible in the log.
func runGate(w io.Writer, oldPath, newPath string, opt gateOptions) (int, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return 0, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(w, "gate: %s -> %s (alpha %g, threshold +%g%%)\n",
		oldPath, newPath, opt.alpha, opt.threshold*100)
	if oldRep.Goos != newRep.Goos || oldRep.Goarch != newRep.Goarch || oldRep.CPUs != newRep.CPUs {
		fmt.Fprintf(w, "warning: reports come from different machines (%s/%s/%d CPUs vs %s/%s/%d CPUs); medians are not comparable across machines\n",
			oldRep.Goos, oldRep.Goarch, oldRep.CPUs, newRep.Goos, newRep.Goarch, newRep.CPUs)
	}
	oldByName := map[string]ConfigResult{}
	for _, c := range oldRep.Configs {
		oldByName[c.Name] = c
	}
	fmt.Fprintf(w, "%-52s %12s %12s %7s %8s  %s\n",
		"config", "old ns/op", "new ns/op", "ratio", "p", "verdict")
	var added []string
	regressions := 0
	seen := map[string]bool{}
	for _, nc := range newRep.Configs {
		seen[nc.Name] = true
		oc, ok := oldByName[nc.Name]
		if !ok {
			added = append(added, nc.Name)
			continue
		}
		v, err := compareConfig(oc, nc, opt)
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(w, "%-52s %12.1f %12.1f %7.3f %8.4f  %s\n",
			v.name, v.oldMed, v.newMed, v.ratio, v.p, v.verdict())
		if v.allocs {
			fmt.Fprintf(w, "%-52s %12s allocs/op regressed: median %.2f -> %.2f\n",
				"", "", v.allocsOld, v.allocsNew)
		}
		if v.regressed() {
			regressions++
		}
	}
	for _, name := range added {
		fmt.Fprintf(w, "new configuration (passes): %s\n", name)
	}
	var removed []string
	for name := range oldByName {
		if !seen[name] {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "removed configuration (note): %s no longer measured\n", name)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "gate: %d statistically significant regression(s)\n", regressions)
	} else {
		fmt.Fprintf(w, "gate: no statistically significant regressions\n")
	}
	return regressions, nil
}

// compareConfig decides one configuration's verdict.
//
// ns/op regresses when BOTH hold: the one-sided Mann-Whitney test finds
// the old samples significantly stochastically smaller (p < alpha — the
// slowdown is distinguishable from noise), and the median slowdown
// exceeds the threshold (it is material). The symmetric test reports
// significant material speedups informationally. Medians are recomputed
// from the raw samples, never trusted from the file.
//
// allocs/op is near-deterministic (the Mann-Whitney test degenerates on
// all-equal samples), so it gates on medians alone: a regression needs
// both a quarter of an allocation per trial in absolute terms — real new
// allocation work, not measurement jitter from a stray GC — and the
// relative threshold.
func compareConfig(oc, nc ConfigResult, opt gateOptions) (gateVerdict, error) {
	oldNS, err := metricSamples(oc, "ns/op")
	if err != nil {
		return gateVerdict{}, err
	}
	newNS, err := metricSamples(nc, "ns/op")
	if err != nil {
		return gateVerdict{}, err
	}
	v := gateVerdict{
		name:   nc.Name,
		oldMed: stats.Summarize(oldNS).Median,
		newMed: stats.Summarize(newNS).Median,
	}
	_, v.p = stats.MannWhitneyU(oldNS, newNS)
	v.ratio = v.newMed / v.oldMed
	if v.p < opt.alpha && v.ratio > 1+opt.threshold {
		v.slower = true
	}
	if _, pFaster := stats.MannWhitneyU(newNS, oldNS); pFaster < opt.alpha && v.ratio < 1/(1+opt.threshold) {
		v.faster = true
	}
	oldAl, err := metricSamples(oc, "allocs/op")
	if err != nil {
		return gateVerdict{}, err
	}
	newAl, err := metricSamples(nc, "allocs/op")
	if err != nil {
		return gateVerdict{}, err
	}
	v.allocsOld = stats.Summarize(oldAl).Median
	v.allocsNew = stats.Summarize(newAl).Median
	if v.allocsNew > v.allocsOld+0.25 && v.allocsNew > v.allocsOld*(1+opt.threshold) {
		v.allocs = true
	}
	return v, nil
}

// metricSamples extracts one metric's raw samples, erroring on a report
// that lacks them (a corrupt or hand-edited file must not silently pass
// the gate).
func metricSamples(c ConfigResult, metric string) ([]float64, error) {
	m, ok := c.Metrics[metric]
	if !ok || len(m.Samples) == 0 {
		return nil, fmt.Errorf("configuration %q carries no %s samples", c.Name, metric)
	}
	return m.Samples, nil
}
