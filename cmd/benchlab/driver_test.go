package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"dispersion/internal/benchsuite"
)

// tinySuites is a fast end-to-end lab: 2 configurations, 4 samples of 40
// trials each.
const tinySuites = `{
  "defaults": {"samples": 4, "iterations": 40, "warmup": 1, "workers": 1, "seed": 3},
  "suites": [
    {"name": "tiny", "processes": ["sequential", "parallel"], "graphs": ["complete:32"]}
  ]
}`

func tinyConfigs(t *testing.T) []benchsuite.Config {
	t.Helper()
	f, err := benchsuite.Parse([]byte(tinySuites))
	if err != nil {
		t.Fatal(err)
	}
	return f.Configs(false)
}

func TestLabEndToEnd(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "lab.json")
	trajPath := filepath.Join(dir, "trajectory.jsonl")

	var table bytes.Buffer
	rep, err := runLab(context.Background(), tinyConfigs(t), false, nil, &table)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Configs) != 2 {
		t.Fatalf("measured %d configurations, want 2", len(rep.Configs))
	}
	for _, c := range rep.Configs {
		for _, metric := range []string{"ns/op", "trials/sec", "allocs/op"} {
			m, ok := c.Metrics[metric]
			if !ok {
				t.Fatalf("%s: missing metric %s", c.Name, metric)
			}
			if len(m.Samples) != 4 {
				t.Errorf("%s %s: %d samples, want 4", c.Name, metric, len(m.Samples))
			}
			if m.MeanCI[0] > m.Mean || m.Mean > m.MeanCI[1] {
				t.Errorf("%s %s: mean %g outside its CI %v", c.Name, metric, m.Mean, m.MeanCI)
			}
			if m.MedianCI[0] > m.Median || m.Median > m.MedianCI[1] {
				t.Errorf("%s %s: median %g outside its CI %v", c.Name, metric, m.Median, m.MedianCI)
			}
		}
		if ns := c.Metrics["ns/op"]; ns.Median <= 0 {
			t.Errorf("%s: non-positive median ns/op %g", c.Name, ns.Median)
		}
		if tps := c.Metrics["trials/sec"]; tps.Median <= 0 {
			t.Errorf("%s: non-positive trials/sec %g", c.Name, tps.Median)
		}
	}
	// The human table carries one row per configuration plus the header.
	if got := bytes.Count(table.Bytes(), []byte("\n")); got != 3 {
		t.Errorf("table has %d lines, want 3:\n%s", got, table.String())
	}

	// The report round-trips through the file and passes the gate
	// against itself.
	if err := writeReport(outPath, rep); err != nil {
		t.Fatal(err)
	}
	back, err := loadReport(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Configs) != 2 || back.Schema != Schema {
		t.Fatalf("report did not round-trip: %+v", back)
	}
	if n, err := runGate(io.Discard, outPath, outPath, gateOptions{alpha: 0.05, threshold: 0.05}); err != nil || n != 0 {
		t.Fatalf("self-gate: %d regressions, err %v", n, err)
	}

	// The trajectory file appends one ordered line per run.
	for i := 0; i < 2; i++ {
		if err := appendTrajectory(trajPath, rep); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(trajPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var pt trajectoryPoint
		if err := json.Unmarshal(sc.Bytes(), &pt); err != nil {
			t.Fatalf("trajectory line %d: %v", lines, err)
		}
		if len(pt.Configs) != 2 || pt.Configs[0].Name != "tiny/sequential/complete:32" {
			t.Errorf("trajectory line %d: %+v", lines, pt)
		}
		if pt.Configs[0].NsPerOp <= 0 {
			t.Errorf("trajectory line %d: non-positive ns/op", lines)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("trajectory has %d lines, want 2", lines)
	}
}

func TestLabRunFilter(t *testing.T) {
	rep, err := runLab(context.Background(), tinyConfigs(t), false,
		regexp.MustCompile(`parallel`), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Configs) != 1 || rep.Configs[0].Name != "tiny/parallel/complete:32" {
		t.Fatalf("filter kept %+v", rep.Configs)
	}
	if _, err := runLab(context.Background(), tinyConfigs(t), false,
		regexp.MustCompile(`nothing-matches`), io.Discard); err == nil {
		t.Error("empty filtered run did not error")
	}
}

// TestCommittedSuitesFile pins the repository's checked-in suites file:
// it must parse, expand without name collisions, keep statistically
// meaningful sample counts, and declare quick budgets small enough for
// CI.
func TestCommittedSuitesFile(t *testing.T) {
	f, err := benchsuite.Load(filepath.Join("..", "..", "benchsuites.json"))
	if err != nil {
		t.Fatal(err)
	}
	full := f.Configs(false)
	quick := f.Configs(true)
	if len(full) == 0 || len(full) != len(quick) {
		t.Fatalf("expanded %d full / %d quick configurations", len(full), len(quick))
	}
	for i, c := range full {
		if c.Samples < 10 {
			t.Errorf("%s: %d samples — the lab needs N >= 10 for its intervals", c.Name, c.Samples)
		}
		if q := quick[i]; q.Iterations >= max(c.Iterations, 2) {
			t.Errorf("%s: quick budget %d not smaller than full budget %d", c.Name, q.Iterations, c.Iterations)
		}
		if err := c.Job().Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}
