package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from the current gate output:
//
//	go test ./cmd/benchlab -run TestGate -update
var update = flag.Bool("update", false, "rewrite golden files")

// runGateFixture gates testdata/gate_old.json against the named new
// fixture and compares the output against the golden file.
func runGateFixture(t *testing.T, newFixture, golden string, wantRegressions int) string {
	t.Helper()
	var buf bytes.Buffer
	n, err := runGate(&buf, filepath.Join("testdata", "gate_old.json"),
		filepath.Join("testdata", newFixture), gateOptions{alpha: 0.05, threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if n != wantRegressions {
		t.Errorf("gate found %d regressions, want %d\noutput:\n%s", n, wantRegressions, buf.String())
	}
	goldenPath := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("gate output differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.String(), want)
	}
	return buf.String()
}

func TestGateSeededRegressionFails(t *testing.T) {
	out := runGateFixture(t, "gate_new_regressed.json", "gate_regressed.golden", 2)
	// The 30% slowdown on the sequential clique and the 0→3 allocs/op
	// jump on the torus both fail; the jittered parallel run and the
	// significant-but-immaterial (+0.1%) cycle shift both pass.
	if !strings.Contains(out, "slower!") {
		t.Error("missing slower! verdict")
	}
	if !strings.Contains(out, "allocs!") {
		t.Error("missing allocs! verdict")
	}
	if !strings.Contains(out, "2 statistically significant regression(s)") {
		t.Error("missing regression summary")
	}
}

func TestGateNoisyEqualPasses(t *testing.T) {
	out := runGateFixture(t, "gate_new_noisy.json", "gate_noisy.golden", 0)
	// The cycle config shifted by a consistent, statistically
	// significant +2% — below the 5% materiality threshold, so it must
	// NOT regress (that is the whole point of the threshold).
	if !strings.Contains(out, "no statistically significant regressions") {
		t.Error("noisy-but-equal pair did not pass")
	}
	if strings.Contains(out, "slower!") {
		t.Error("noise flagged as regression")
	}
}

func TestGateAddedAndRemovedPassWithNotes(t *testing.T) {
	out := runGateFixture(t, "gate_new_added.json", "gate_added.golden", 0)
	if !strings.Contains(out, "new configuration (passes): variants/capacity/complete:512") {
		t.Error("missing added-configuration note")
	}
	if !strings.Contains(out, "removed configuration (note): engine/parallel/complete:512") {
		t.Error("missing removed-configuration note")
	}
}

func TestGateIdenticalReportPasses(t *testing.T) {
	var buf bytes.Buffer
	old := filepath.Join("testdata", "gate_old.json")
	n, err := runGate(&buf, old, old, gateOptions{alpha: 0.05, threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("identical reports produced %d regressions:\n%s", n, buf.String())
	}
}

func TestGateTightensWithOptions(t *testing.T) {
	// With the materiality threshold at zero, the +2% cycle shift in the
	// noisy fixture becomes a regression: the threshold flag is live.
	var buf bytes.Buffer
	n, err := runGate(&buf, filepath.Join("testdata", "gate_old.json"),
		filepath.Join("testdata", "gate_new_noisy.json"), gateOptions{alpha: 0.05, threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("threshold 0: %d regressions, want 1 (the +2%% cycle shift)\n%s", n, buf.String())
	}
	// And with alpha tightened to 1e-9 even the seeded regression's
	// evidence (p ≈ 1e-4 from 10 fully separated samples) is deemed
	// insufficient: alpha is live too.
	buf.Reset()
	n, err = runGate(&buf, filepath.Join("testdata", "gate_old.json"),
		filepath.Join("testdata", "gate_new_regressed.json"), gateOptions{alpha: 1e-9, threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("alpha 1e-9: %d regressions, want 1 (only the alloc jump, which alpha does not govern)\n%s", n, buf.String())
	}
}

func TestGateRejectsNonBenchlabReport(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "benchjson.json")
	if err := os.WriteFile(bad, []byte(`{"benchmarks": [{"name": "X", "metrics": {"ns/op": 5}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runGate(&bytes.Buffer{}, bad, bad, gateOptions{alpha: 0.05, threshold: 0.05}); err == nil {
		t.Fatal("benchjson document accepted as a benchlab report")
	} else if !strings.Contains(err.Error(), "schema") {
		t.Errorf("error %q does not mention the schema", err)
	}
}
