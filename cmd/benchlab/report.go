package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dispersion/internal/benchsuite"
	"dispersion/internal/stats"
)

// Schema identifies the benchlab report document format; gate refuses
// files that do not carry it, so a benchjson artifact (the old 1x-sweep
// format) cannot be gated by accident.
const Schema = "dispersion-benchlab/1"

// ciLevel is the confidence level of every interval the lab reports.
const ciLevel = 0.95

// Report is one lab run's output document: the machine context plus one
// ConfigResult per measured configuration, in suite order. It is the
// unit the gate compares and the trajectory file accumulates.
type Report struct {
	// Schema is always the Schema constant.
	Schema string `json:"schema"`
	// When is the run's RFC3339 start time.
	When string `json:"when,omitempty"`
	// Goos, Goarch, CPUs and GoVersion describe the machine; the gate
	// warns when they differ between the two reports, since
	// cross-machine medians are not comparable.
	Goos   string `json:"goos"`
	Goarch string `json:"goarch"`
	// CPUs is runtime.NumCPU at run time.
	CPUs int `json:"cpus"`
	// GoVersion is runtime.Version at run time.
	GoVersion string `json:"go"`
	// Quick records that the run used the reduced quick budgets.
	Quick bool `json:"quick,omitempty"`
	// Configs holds one entry per measured configuration.
	Configs []ConfigResult `json:"configs"`
}

// ConfigResult is one configuration's measurements: its identity and
// budgets (the expanded benchsuite cell) plus per-metric statistics.
type ConfigResult struct {
	benchsuite.Config
	// Metrics maps metric name (ns/op, trials/sec, allocs/op) to its
	// per-sample values and summary statistics.
	Metrics map[string]Metric `json:"metrics"`
}

// Metric is one metric's repeated measurements across a configuration's
// samples, with the summary statistics the lab reports: mean with its
// Student-t confidence interval and median with its distribution-free
// order-statistic interval.
type Metric struct {
	// Samples holds the raw per-sample values, in measurement order —
	// the gate's input.
	Samples []float64 `json:"samples"`
	// Mean and Median locate the metric.
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	// MeanCI is the t-based confidence interval for the mean at Level.
	MeanCI [2]float64 `json:"mean_ci"`
	// MedianCI is the order-statistic interval for the median;
	// MedianLevel is its achieved coverage (see stats.MedianCI).
	MedianCI    [2]float64 `json:"median_ci"`
	MedianLevel float64    `json:"median_level"`
	// Level is the requested confidence level of MeanCI.
	Level float64 `json:"level"`
}

// newMetric summarizes one metric's samples.
func newMetric(samples []float64) (Metric, error) {
	mean, err := stats.MeanCI(samples, ciLevel)
	if err != nil {
		return Metric{}, err
	}
	med, err := stats.MedianCI(samples, ciLevel)
	if err != nil {
		return Metric{}, err
	}
	return Metric{
		Samples:     samples,
		Mean:        stats.Summarize(samples).Mean,
		Median:      stats.Summarize(samples).Median,
		MeanCI:      [2]float64{mean.Lo, mean.Hi},
		MedianCI:    [2]float64{med.Lo, med.Hi},
		MedianLevel: med.Level,
		Level:       ciLevel,
	}, nil
}

// newReport stamps an empty report with the machine context.
func newReport(quick bool) *Report {
	return &Report{
		Schema:    Schema,
		When:      time.Now().UTC().Format(time.RFC3339),
		Goos:      runtime.GOOS,
		Goarch:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Quick:     quick,
	}
}

// writeReport writes the report as indented JSON to path.
func writeReport(path string, rep *Report) error {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// loadReport reads a benchlab report, rejecting documents without the
// benchlab schema marker.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q is not a benchlab report (want %q)", path, rep.Schema, Schema)
	}
	return &rep, nil
}

// trajectoryPoint is one line of the append-only perf-trajectory file:
// a condensed view of one run (median and median CI per configuration),
// ordered as the run was.
type trajectoryPoint struct {
	// When is the run's RFC3339 start time; lines append in run order,
	// so the file reads as a time series.
	When string `json:"when"`
	// Quick marks reduced-budget (CI) points, which are noisier than
	// full lab runs.
	Quick bool `json:"quick,omitempty"`
	// Goos, Goarch, CPUs, GoVersion describe the machine the point was
	// measured on; points from different machines are separate series.
	Goos      string `json:"goos"`
	Goarch    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go"`
	// Configs condenses each configuration to its headline numbers.
	Configs []trajectoryConfig `json:"configs"`
}

// trajectoryConfig is one configuration's condensed entry in a
// trajectory point.
type trajectoryConfig struct {
	// Name is the configuration name (benchsuite.Config.Name).
	Name string `json:"name"`
	// NsPerOp is the median ns per trial; NsPerOpCI its order-statistic
	// confidence interval.
	NsPerOp   float64    `json:"ns_per_op"`
	NsPerOpCI [2]float64 `json:"ns_per_op_ci"`
	// TrialsPerSec is the median throughput.
	TrialsPerSec float64 `json:"trials_per_sec"`
	// AllocsPerOp is the median allocation count per trial.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// appendTrajectory appends the run's condensed point as one JSON line to
// the trajectory file, creating it if needed. Appending — never
// rewriting — preserves the order of every earlier point.
func appendTrajectory(path string, rep *Report) error {
	pt := trajectoryPoint{
		When:      rep.When,
		Quick:     rep.Quick,
		Goos:      rep.Goos,
		Goarch:    rep.Goarch,
		CPUs:      rep.CPUs,
		GoVersion: rep.GoVersion,
	}
	for _, c := range rep.Configs {
		ns := c.Metrics["ns/op"]
		pt.Configs = append(pt.Configs, trajectoryConfig{
			Name:         c.Name,
			NsPerOp:      ns.Median,
			NsPerOpCI:    ns.MedianCI,
			TrialsPerSec: c.Metrics["trials/sec"].Median,
			AllocsPerOp:  c.Metrics["allocs/op"].Median,
		})
	}
	line, err := json.Marshal(pt)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printResult renders one configuration's headline numbers as a table
// row: median ns/op with its CI halfwidth, median throughput, median
// allocations.
func printResult(w io.Writer, c ConfigResult) {
	ns := c.Metrics["ns/op"]
	half := (ns.MedianCI[1] - ns.MedianCI[0]) / 2
	fmt.Fprintf(w, "%-52s %12.0f ±%-10.0f %12.0f %10.2f\n",
		c.Name, ns.Median, half,
		c.Metrics["trials/sec"].Median, c.Metrics["allocs/op"].Median)
}

// printHeader renders the column header matching printResult.
func printHeader(w io.Writer) {
	fmt.Fprintf(w, "%-52s %12s %-11s %12s %10s\n",
		"config", "ns/op", " (±CI)", "trials/sec", "allocs/op")
}
