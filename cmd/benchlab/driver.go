package main

import (
	"context"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"time"

	"dispersion"
	"dispersion/internal/benchsuite"
)

// runLab measures every configuration and assembles the run's Report,
// streaming one table row per configuration to w as results land. filter
// (optional) restricts the run to configuration names it matches.
func runLab(ctx context.Context, cfgs []benchsuite.Config, quick bool, filter *regexp.Regexp, w io.Writer) (*Report, error) {
	rep := newReport(quick)
	printHeader(w)
	for _, cfg := range cfgs {
		if filter != nil && !filter.MatchString(cfg.Name) {
			continue
		}
		res, err := measureConfig(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		rep.Configs = append(rep.Configs, res)
		printResult(w, res)
	}
	if len(rep.Configs) == 0 {
		return nil, fmt.Errorf("no configuration matched")
	}
	return rep, nil
}

// measureConfig runs one configuration's warmup and samples and
// summarizes its metrics.
//
// The measurement model: every sample times the SAME work — cfg.Samples
// repetitions of cfg.Iterations engine trials from the same seed — so
// the spread across samples is machine noise, not workload variation,
// and the confidence intervals quantify exactly the uncertainty a gate
// has to discount. Warmup samples run first and are discarded (caches,
// branch predictors, the scheduler and the allocator pools settle in).
// Allocations are counted from runtime.MemStats.Mallocs around the timed
// run after a forced GC; with ReuseResults on, the built-in processes
// sit at 0 allocs/op in steady state, so a sustained nonzero median here
// is a real hot-path regression.
func measureConfig(ctx context.Context, cfg benchsuite.Config) (ConfigResult, error) {
	eng := dispersion.Engine{Seed: cfg.Seed, Workers: cfg.Workers, ReuseResults: true}
	job := cfg.Job()
	for i := 0; i < cfg.Warmup; i++ {
		if err := eng.Run(ctx, job, nil); err != nil {
			return ConfigResult{}, err
		}
	}
	nsOp := make([]float64, 0, cfg.Samples)
	trialsSec := make([]float64, 0, cfg.Samples)
	allocsOp := make([]float64, 0, cfg.Samples)
	var ms0, ms1 runtime.MemStats
	for i := 0; i < cfg.Samples; i++ {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if err := eng.Run(ctx, job, nil); err != nil {
			return ConfigResult{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		iters := float64(cfg.Iterations)
		nsOp = append(nsOp, float64(elapsed.Nanoseconds())/iters)
		trialsSec = append(trialsSec, iters/elapsed.Seconds())
		allocsOp = append(allocsOp, float64(ms1.Mallocs-ms0.Mallocs)/iters)
	}
	res := ConfigResult{Config: cfg, Metrics: map[string]Metric{}}
	for name, samples := range map[string][]float64{
		"ns/op":      nsOp,
		"trials/sec": trialsSec,
		"allocs/op":  allocsOp,
	} {
		m, err := newMetric(samples)
		if err != nil {
			return ConfigResult{}, fmt.Errorf("summarizing %s: %w", name, err)
		}
		res.Metrics[name] = m
	}
	return res, nil
}
