// Command benchlab is the repository's benchmark laboratory: it runs the
// declarative benchmark suites committed in benchsuites.json (graph
// family × process × options grids — see internal/benchsuite for the
// schema) with repeated timed samples per configuration, reports
// benchstat-style summaries (median and mean with confidence intervals
// for ns/op, trials/sec and allocs/op), appends each run to the
// append-only perf-trajectory file, and — as a gate — compares two runs
// with a statistical test so CI fails only on significant regressions,
// never on noise.
//
// Measure:
//
//	benchlab [-suites benchsuites.json] [-quick] [-run REGEX] \
//	         [-out BENCH_lab.json] [-trajectory BENCH_trajectory.jsonl]
//
// Each configuration runs warmup samples (discarded), then N timed
// samples of a fixed trial count through the public dispersion engine;
// identical seeds mean every sample times identical work, so the spread
// across samples is pure machine noise. -quick swaps in each suite's
// reduced iteration budget for fast CI runs. -list prints the expanded
// configurations without running them.
//
// Gate:
//
//	benchlab -gate OLD.json NEW.json [-alpha 0.05] [-threshold 0.05]
//
// A configuration fails the gate only if the slowdown is statistically
// significant (one-sided Mann-Whitney p < alpha on the raw ns/op
// samples) AND material (median slowdown beyond the threshold), or if
// its allocation count genuinely grew. Benchmarks present in only one
// report are noted and never fail the gate. Exit status 1 means at least
// one real regression; benchcmp's noise-blind single-iteration
// comparison is deprecated in favor of this.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"regexp"

	"dispersion/internal/benchsuite"
)

func main() {
	var (
		suitesPath = flag.String("suites", "benchsuites.json", "declarative suites file to run")
		quick      = flag.Bool("quick", false, "use each suite's reduced quick iteration budget (CI mode)")
		runFilter  = flag.String("run", "", "only run configurations whose name matches this regexp")
		outPath    = flag.String("out", "", "write the full JSON report to this file")
		trajectory = flag.String("trajectory", "", "append this run's summary line to this JSONL trajectory file")
		list       = flag.Bool("list", false, "print the expanded configurations and exit")
		gate       = flag.Bool("gate", false, "compare two reports: benchlab -gate OLD.json NEW.json")
		alpha      = flag.Float64("alpha", 0.05, "gate significance level for the Mann-Whitney test")
		threshold  = flag.Float64("threshold", 0.05, "gate threshold: minimum material median slowdown (0.05 = 5%)")
	)
	flag.Parse()
	if err := run(*suitesPath, *quick, *runFilter, *outPath, *trajectory, *list,
		*gate, *alpha, *threshold, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchlab:", err)
		os.Exit(1)
	}
}

// errGateFailed signals a regression verdict (exit 1) distinctly from
// operational errors.
var errGateFailed = fmt.Errorf("gate failed")

// run dispatches the three modes: gate, list, measure.
func run(suitesPath string, quick bool, runFilter, outPath, trajectory string,
	list, gate bool, alpha, threshold float64, args []string) error {
	if gate {
		if len(args) != 2 {
			return fmt.Errorf("usage: benchlab -gate OLD.json NEW.json")
		}
		if !(alpha > 0 && alpha < 1) || threshold < 0 {
			return fmt.Errorf("gate wants 0 < alpha < 1 and threshold >= 0")
		}
		n, err := runGate(os.Stdout, args[0], args[1], gateOptions{alpha: alpha, threshold: threshold})
		if err != nil {
			return err
		}
		if n > 0 {
			return errGateFailed
		}
		return nil
	}
	if len(args) != 0 {
		return fmt.Errorf("unexpected arguments %v (did you mean -gate OLD NEW?)", args)
	}
	suites, err := benchsuite.Load(suitesPath)
	if err != nil {
		return err
	}
	cfgs := suites.Configs(quick)
	var filter *regexp.Regexp
	if runFilter != "" {
		filter, err = regexp.Compile(runFilter)
		if err != nil {
			return err
		}
	}
	if list {
		for _, c := range cfgs {
			if filter != nil && !filter.MatchString(c.Name) {
				continue
			}
			fmt.Printf("%-52s samples=%d iterations=%d warmup=%d workers=%d seed=%d\n",
				c.Name, c.Samples, c.Iterations, c.Warmup, c.Workers, c.Seed)
		}
		return nil
	}
	rep, err := runLab(context.Background(), cfgs, quick, filter, os.Stdout)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := writeReport(outPath, rep); err != nil {
			return err
		}
	}
	if trajectory != "" {
		if err := appendTrajectory(trajectory, rep); err != nil {
			return err
		}
	}
	return nil
}
