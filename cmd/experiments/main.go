// Command experiments runs the full reproduction suite: one experiment per
// table row / quantitative claim of the paper (the index in DESIGN.md),
// printing measured-vs-paper comparison tables and a PASS/CHECK verdict
// for each. With -csvdir, every experiment's comparison table is also
// written as <dir>/<ID>.csv for downstream plotting.
//
// Usage:
//
//	experiments                  # full suite at scale 1.0 (minutes)
//	experiments -scale 0.25      # quick pass
//	experiments -only E01,E13    # selected experiments
//	experiments -csvdir out/     # also write per-experiment CSV tables
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dispersion/experiments"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "random seed")
		scale   = flag.Float64("scale", 1.0, "work scale in (0,1]")
		only    = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		csvDir  = flag.String("csvdir", "", "write each experiment's table as <dir>/<ID>.csv")
		verbose = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Scale: *scale}
	if *verbose {
		cfg.Out = os.Stderr
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
	}

	// The plain full-suite path keeps RunAll's aggregated report; any
	// selection or CSV export runs the experiments individually.
	if *only == "" && *csvDir == "" {
		failed := experiments.RunAll(cfg, os.Stdout)
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "\n%d experiment(s) flagged CHECK\n", failed)
			os.Exit(1)
		}
		return
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	exitCode := 0
	for _, e := range selected {
		fmt.Printf("\n=== %s: %s ===\n", e.ID, e.Title)
		fmt.Printf("source: %s\nclaim:  %s\n\n", e.Source, e.Claim)
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ERROR: %v\n", err)
			exitCode = 1
			continue
		}
		if rep.Table != nil {
			rep.Table.Render(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(filepath.Join(*csvDir, e.ID+".csv"), rep.Table); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					exitCode = 1
				}
			}
		}
		for _, n := range rep.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		verdict := "PASS"
		if !rep.Pass {
			verdict = "CHECK"
			exitCode = 1
		}
		fmt.Printf("  %s: %s\n", verdict, rep.Summary)
	}
	os.Exit(exitCode)
}

// writeCSV persists one experiment's comparison table.
func writeCSV(path string, t *experiments.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
