// Command benchjson converts the text output of `go test -bench` on
// stdin into a machine-readable JSON document on stdout, so CI can
// archive each run's benchmark numbers as an artifact and the perf
// trajectory of the repository accumulates point by point.
//
// Usage:
//
//	go test -run=NONE -bench . -benchtime 1x . | benchjson > BENCH_pr.json
//
// The output carries the goos/goarch/pkg/cpu context lines plus one
// entry per benchmark with its name, GOMAXPROCS suffix, iteration count,
// and every reported metric (ns/op, B/op, allocs/op, custom units).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Report is the JSON document benchjson emits: the benchmark context
// plus one Entry per benchmark line.
type Report struct {
	// Goos, Goarch, Pkg and CPU echo the context lines of the bench run.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks holds one entry per Benchmark result line, in input
	// order.
	Benchmarks []Entry `json:"benchmarks"`
}

// Entry is one parsed benchmark result line.
type Entry struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -P GOMAXPROCS suffix, e.g. "Table1CliqueSeq".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the benchmark line (1 when the
	// line carried none).
	Procs int `json:"procs"`
	// Iterations is b.N, the first column of the result line.
	Iterations int64 `json:"iterations"`
	// Metrics maps each reported unit to its value, e.g.
	// {"ns/op": 41250, "B/op": 16384, "allocs/op": 12}.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes `go test -bench` text output line by line.
func parse(sc *bufio.Scanner) (*Report, error) {
	report := &Report{Benchmarks: []Entry{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			report.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			entry, ok, err := parseBench(line)
			if err != nil {
				return nil, err
			}
			if ok {
				report.Benchmarks = append(report.Benchmarks, entry)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// parseBench parses one "BenchmarkName-P N v1 u1 v2 u2 ..." result line.
// Lines that start with "Benchmark" but are not result lines (e.g. a
// bare name echoed under -v) report ok = false.
func parseBench(line string) (Entry, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Entry{}, false, nil
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false, nil
	}
	entry := Entry{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Entry{}, false, fmt.Errorf("odd metric count in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Entry{}, false, fmt.Errorf("bad metric value in %q: %w", line, err)
		}
		entry.Metrics[rest[i+1]] = v
	}
	return entry, true, nil
}
