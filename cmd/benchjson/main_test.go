package main

import (
	"bufio"
	"reflect"
	"strings"
	"testing"
)

// The parser turns a realistic -bench run into structured entries,
// keeping the context lines and every metric pair.
func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: dispersion
cpu: AMD EPYC 7B13
BenchmarkTable1CliqueSeq-8   	       1	     41250 ns/op
BenchmarkCutPaste-8          	       2	   1203000 ns/op	  262144 B/op	     731 allocs/op
BenchmarkStepCSR             	 1000000	        11.5 ns/op
PASS
ok  	dispersion	1.234s
`
	report, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" || report.Pkg != "dispersion" || report.CPU != "AMD EPYC 7B13" {
		t.Errorf("context = %q %q %q %q", report.Goos, report.Goarch, report.Pkg, report.CPU)
	}
	want := []Entry{
		{Name: "Table1CliqueSeq", Procs: 8, Iterations: 1, Metrics: map[string]float64{"ns/op": 41250}},
		{Name: "CutPaste", Procs: 8, Iterations: 2, Metrics: map[string]float64{
			"ns/op": 1203000, "B/op": 262144, "allocs/op": 731,
		}},
		{Name: "StepCSR", Procs: 1, Iterations: 1000000, Metrics: map[string]float64{"ns/op": 11.5}},
	}
	if !reflect.DeepEqual(report.Benchmarks, want) {
		t.Errorf("benchmarks = %+v\nwant %+v", report.Benchmarks, want)
	}
}

// Non-result Benchmark lines (the -v echo) are skipped, not errors.
func TestParseSkipsEchoLines(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkStepCSR\nBenchmarkStepCSR-8 5 3 ns/op\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 1 || report.Benchmarks[0].Name != "StepCSR" {
		t.Errorf("benchmarks = %+v", report.Benchmarks)
	}
}

// A malformed metric pair is a hard error: silently dropping numbers
// would corrupt the perf trajectory.
func TestParseBadMetrics(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkX-4 1 123 ns/op trailing\n"))); err == nil {
		t.Fatal("odd metric count accepted")
	}
}
