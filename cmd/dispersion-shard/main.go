// Command dispersion-shard is the fan-out coordinator for trial-range
// sharding: it splits one logical job into K disjoint FirstTrial ranges,
// submits them across one or more dispersion servers, merges the NDJSON
// result streams back into a single in-order result set, and retries or
// resumes dead shards without recomputing delivered trials.
//
// Usage:
//
//	dispersion-server -addr :8080 &
//	dispersion-server -addr :8081 &
//	dispersion-shard -servers http://localhost:8080,http://localhost:8081 \
//	    -shards 8 -graph torus:32x32 -process parallel -trials 1000000 \
//	    -seed 1 -checkpoint run.jsonl
//
// The merged stream is bit-identical to a single contiguous Engine.Run
// (or one unsharded server job) with the same (seed, experiment, spec).
// With -checkpoint, every merged result is logged to a JSONL
// write-ahead file before delivery; killing the coordinator and
// rerunning the same command resumes from the log, computing only the
// missing suffix. The checkpoint is itself the complete result archive
// once the run finishes.
//
// -jsonl additionally writes the merged records to a separate file (or
// "-" for stdout); a summary with the trial count and mean dispersion
// time is always printed.
//
// With -summary FILE the coordinator switches to sketch-merge mode
// (shard.Coordinator.RunSummary): shards run server-side as
// summary_only jobs, only their kilobyte agg.Summary sketches cross
// the network, and the merged summary — byte-identical to a contiguous
// run's — is written to FILE ("-" = stdout). Per-trial output (-jsonl)
// is unavailable in this mode; -checkpoint logs completed shard
// summaries instead of results, and resuming recomputes only the
// missing shards.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dispersion"
	"dispersion/server"
	"dispersion/shard"
	"dispersion/sink"
)

func main() {
	var (
		servers    = flag.String("servers", "", "comma-separated dispersion-server base URLs (required)")
		shards     = flag.Int("shards", 0, "number of trial-range shards K (0 = one per server)")
		checkpoint = flag.String("checkpoint", "", "JSONL write-ahead result log; rerunning resumes from it")
		retries    = flag.Int("retries", 0, "consecutive no-progress attempts before a shard gives up (0 = 5)")

		process = flag.String("process", "seq",
			"process: seq|par|unif|ctu|ctseq|geom|thresh|cap|cap-par (or a lazy- prefix)")
		graphSpec  = flag.String("graph", "complete:128", "graph family spec (see dispersion/graphspec)")
		origin     = flag.Int("origin", 0, "origin vertex")
		trials     = flag.Int("trials", 1000, "number of independent trials")
		firstTrial = flag.Int("first-trial", 0, "first trial index of the logical range")
		seed       = flag.Uint64("seed", 1, "random seed (reproducible)")
		experiment = flag.Uint64("experiment", 0, "experiment stream namespace")

		lazy           = flag.Bool("lazy", false, "use lazy random walks")
		record         = flag.Bool("record", false, "keep full trajectories in every result")
		particles      = flag.Int("particles", 0, "disperse k particles instead of one per vertex (0 = default)")
		randomOrigins  = flag.Bool("random-origins", false, "sample each particle's origin uniformly")
		maxSteps       = flag.Int64("max-steps", 0, "truncate runs past this many total steps (0 = unbounded)")
		randomPriority = flag.Bool("random-priority", false, "random priority permutation for parallel conflicts")
		settleParam    = flag.Float64("settle-param", 0,
			"settle-rule parameter: geom's settle probability, thresh's minimum steps (0 = process default)")
		capacity = flag.Int("capacity", 0, "per-vertex capacity of the capacity processes (0 = default 2)")

		jsonlPath   = flag.String("jsonl", "", `write merged per-trial records as JSONL to this file ("-" = stdout)`)
		summaryPath = flag.String("summary", "", `sketch-merge mode: write the merged agg.Summary JSON to this file ("-" = stdout)`)
	)
	flag.Parse()

	if *servers == "" {
		fatal(fmt.Errorf("-servers is required (comma-separated base URLs)"))
	}
	if *summaryPath != "" && *jsonlPath != "" {
		fatal(fmt.Errorf("-summary runs summary_only jobs that keep no per-trial results; drop -jsonl"))
	}
	var urls []string
	for _, u := range strings.Split(*servers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	// The registry accepts aliases like "par"; submit the canonical name.
	p, err := dispersion.Lookup(*process)
	if err != nil {
		fatal(err)
	}
	req := server.JobRequest{
		Process:    p.Name(),
		Spec:       *graphSpec,
		Origin:     *origin,
		Trials:     *trials,
		FirstTrial: *firstTrial,
		Seed:       *seed,
		Experiment: *experiment,
		Options: server.Options{
			Lazy:           *lazy,
			Record:         *record,
			Particles:      *particles,
			RandomOrigins:  *randomOrigins,
			MaxSteps:       *maxSteps,
			RandomPriority: *randomPriority,
			SettleParam:    *settleParam,
			Capacity:       *capacity,
		},
	}

	var out sink.Writer
	var outFile *os.File
	if *jsonlPath != "" {
		var w io.Writer = os.Stdout
		if *jsonlPath != "-" {
			f, err := os.Create(*jsonlPath)
			if err != nil {
				fatal(err)
			}
			outFile = f
			w = f
		}
		out = sink.NewJSONL(w)
	}

	coord := &shard.Coordinator{
		Servers:    urls,
		Shards:     *shards,
		Checkpoint: *checkpoint,
		Retries:    *retries,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *summaryPath != "" {
		runSummaryMode(ctx, coord, req, *summaryPath, len(urls))
		return
	}

	var sum float64
	n := 0
	err = coord.Run(ctx, req, func(t dispersion.Trial) error {
		if out != nil {
			if err := out.Write(t); err != nil {
				return err
			}
		}
		sum += t.Result.Makespan()
		n++
		return nil
	})
	// Close the output before claiming success: a close-time write
	// failure means the file may be truncated, and the summary must not
	// report a complete run over it.
	if outFile != nil {
		if cerr := outFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "dispersion-shard: %d trials are durable in %s; rerun to resume\n", n, *checkpoint)
		}
		fatal(err)
	}
	fmt.Printf("%s on %s: %d trials [%d,%d) over %d servers, mean makespan %.6g\n",
		req.Process, req.Spec, n, req.FirstTrial, req.FirstTrial+req.Trials,
		len(urls), sum/float64(n))
}

// runSummaryMode executes the sketch-merge path: merge per-shard
// summaries and write the combined summary JSON.
func runSummaryMode(ctx context.Context, coord *shard.Coordinator, req server.JobRequest, path string, servers int) {
	sum, err := coord.RunSummary(ctx, req)
	if err != nil {
		if coord.Checkpoint != "" {
			fmt.Fprintf(os.Stderr, "dispersion-shard: completed shard summaries are durable in %s; rerun to resume\n", coord.Checkpoint)
		}
		fatal(err)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := sink.WriteSummary(out, sum); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s on %s: %d trials [%d,%d) over %d servers, mean makespan %.6g\n",
		req.Process, req.Spec, sum.Trials, req.FirstTrial, req.FirstTrial+req.Trials,
		servers, sum.Makespan.Moments.Mean())
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dispersion-shard:", err)
	os.Exit(1)
}
