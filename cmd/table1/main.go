// Command table1 regenerates the measured analogue of the paper's Table 1:
// cover time, hitting time, mixing time and both dispersion times for
// every graph family, next to the paper's asymptotic claims.
//
// Usage:
//
//	table1            # full run
//	table1 -scale 0.3 # quick run
package main

import (
	"flag"
	"fmt"
	"os"

	"dispersion/experiments"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "random seed")
		scale   = flag.Float64("scale", 1.0, "work scale in (0,1]")
		verbose = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Scale: *scale}
	if *verbose {
		cfg.Out = os.Stderr
	}
	rows, err := experiments.Table1(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	fmt.Println("Measured analogue of Table 1 (simulated means; exact t_hit; lazy TV t_mix at eps=1/4)")
	fmt.Println()
	experiments.RenderTable1(rows, os.Stdout)
	fmt.Println()
	fmt.Println("Paper asymptotics per family:")
	for _, r := range rows {
		fmt.Printf("  %-16s cover %-14s hit %-12s mix %-16s dispersion %s\n",
			r.Family, r.PaperCover, r.PaperHit, r.PaperMix, r.PaperDisp)
	}
}
