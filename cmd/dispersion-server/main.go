// Command dispersion-server runs the dispersion simulation service: a
// long-running HTTP server that accepts Job submissions and streams
// per-trial results back as NDJSON while jobs execute under a weighted
// fair-share scheduler over the deterministic dispersion.Engine.
//
// Usage:
//
//	dispersion-server -addr :8080
//	dispersion-server -addr :8080 -max-jobs 4 -engine-workers 2
//	dispersion-server -results-dir /var/lib/dispersion
//	dispersion-server -max-queued 256 -tenant-quota 'teamA=weight:3,max-queued:64'
//
// The API (see package dispersion/server and README.md for the full
// reference):
//
//	POST   /v1/jobs              submit a job (tenant = X-API-Key header)
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status and progress
//	GET    /v1/jobs/{id}/results NDJSON result stream (?from=K resumes)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/processes         registered processes and graph kinds
//	GET    /metrics              Prometheus text-format metrics
//	GET    /healthz              liveness probe
//
// Quota flags take a comma-separated key:value list with keys weight,
// max-queued, max-running, and max-resident-bytes; -tenant-quota
// prefixes it with '<api key>=' and may repeat. Submissions over budget
// answer 429 with a Retry-After header. The server logs one structured
// key=value line per request and per scheduler transition.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight jobs are
// cancelled and open streams are closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dispersion/server"
)

// parseQuota parses a comma-separated key:value quota list, e.g.
// "weight:3,max-queued:64,max-resident-bytes:1000000".
func parseQuota(s string) (server.TenantQuota, error) {
	var q server.TenantQuota
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, ":")
		if !ok {
			return q, fmt.Errorf("quota field %q: want key:value", part)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil || n < 0 {
			return q, fmt.Errorf("quota field %q: want a non-negative integer", part)
		}
		switch strings.TrimSpace(key) {
		case "weight":
			q.Weight = int(n)
		case "max-queued":
			q.MaxQueued = int(n)
		case "max-running":
			q.MaxRunning = int(n)
		case "max-resident-bytes":
			q.MaxResidentBytes = n
		default:
			return q, fmt.Errorf("unknown quota key %q (want weight, max-queued, max-running, max-resident-bytes)", key)
		}
	}
	return q, nil
}

// statusWriter records the response status for the request log while
// forwarding http.Flusher, which the NDJSON results stream depends on.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status code.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Write defaults the recorded status to 200 on an implicit header.
func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so result streams stay
// incremental through the logging middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests wraps h with a structured key=value request log.
func logRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		tenant := r.Header.Get(server.APIKeyHeader)
		if tenant == "" {
			tenant = server.AnonymousTenant
		}
		log.Printf("evt=http method=%s path=%s tenant=%s status=%d dur_ms=%d",
			r.Method, r.URL.Path, tenant, sw.status, time.Since(start).Milliseconds())
	})
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxJobs       = flag.Int("max-jobs", 2, "jobs running concurrently; further submissions queue")
		engineWorkers = flag.Int("engine-workers", 0, "per-job engine workers (0 = one per core; never affects results)")
		resultsDir    = flag.String("results-dir", "", "archive every job's trials as <dir>/<job>.jsonl (empty = off)")
		evict         = flag.Bool("evict-consumed", false, "drop a job's in-memory results once it is terminal and its stream was fully consumed (re-reads answer 410)")
		maxQueued     = flag.Int("max-queued", 0, "global queued-job bound; submissions beyond it answer 429 (0 = default 1024)")
		maxResident   = flag.Int64("max-resident-bytes", 0, "global resident result-buffer byte budget; submissions over it answer 429 (0 = unbounded)")
		metrics       = flag.Bool("metrics", true, "serve Prometheus metrics at GET /metrics")
		summaryWait   = flag.Duration("summary-max-wait", 0, "bound on the ?wait=1 summary long-poll (0 = 30s default)")
		retryAfter    = flag.Duration("retry-after", 0, "Retry-After hint on 429 rejections (0 = 1s default)")
	)
	defaultQuota := server.TenantQuota{}
	flag.Func("default-quota", "quota for tenants without a -tenant-quota entry, e.g. 'weight:1,max-queued:64'", func(s string) error {
		q, err := parseQuota(s)
		if err != nil {
			return err
		}
		defaultQuota = q
		return nil
	})
	tenantQuotas := map[string]server.TenantQuota{}
	flag.Func("tenant-quota", "per-tenant quota as '<api key>=<quota list>', e.g. 'teamA=weight:3,max-queued:64' (repeatable)", func(s string) error {
		name, spec, ok := strings.Cut(s, "=")
		if !ok || strings.TrimSpace(name) == "" {
			return fmt.Errorf("want '<api key>=<quota list>', got %q", s)
		}
		q, err := parseQuota(spec)
		if err != nil {
			return err
		}
		tenantQuotas[strings.TrimSpace(name)] = q
		return nil
	})
	flag.Parse()

	if *resultsDir != "" {
		if err := os.MkdirAll(*resultsDir, 0o755); err != nil {
			log.Fatalf("dispersion-server: %v", err)
		}
	}
	m, err := server.NewManager(server.ManagerOptions{
		MaxConcurrent:    *maxJobs,
		EngineWorkers:    *engineWorkers,
		ResultsDir:       *resultsDir,
		EvictConsumed:    *evict,
		MaxQueued:        *maxQueued,
		MaxResidentBytes: *maxResident,
		DefaultQuota:     defaultQuota,
		TenantQuotas:     tenantQuotas,
		RetryAfter:       *retryAfter,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatalf("dispersion-server: %v", err)
	}
	api := server.New(m)
	api.SummaryMaxWait = *summaryWait
	api.DisableMetrics = !*metrics
	srv := &http.Server{Addr: *addr, Handler: logRequests(api)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Print("dispersion-server: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			srv.Close()
		}
	}()

	log.Printf("evt=listen addr=%s max_jobs=%d max_queued=%d metrics=%t", *addr, *maxJobs, *maxQueued, *metrics)
	err = srv.ListenAndServe()
	// Cancel jobs after the listener stops accepting work, then wait for
	// the workers so JSONL archives are complete on exit — and for the
	// graceful Shutdown, so open result streams get their X-Job-State
	// trailer instead of an abrupt reset.
	m.Close()
	stop()
	<-shutdownDone
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("dispersion-server: %v", err)
	}
}
