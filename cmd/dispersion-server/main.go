// Command dispersion-server runs the dispersion simulation service: a
// long-running HTTP server that accepts Job submissions and streams
// per-trial results back as NDJSON while jobs execute on a bounded
// worker pool over the deterministic dispersion.Engine.
//
// Usage:
//
//	dispersion-server -addr :8080
//	dispersion-server -addr :8080 -max-jobs 4 -engine-workers 2
//	dispersion-server -results-dir /var/lib/dispersion
//
// The API (see package dispersion/server and README.md for the full
// reference):
//
//	POST   /v1/jobs              submit a job
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status and progress
//	GET    /v1/jobs/{id}/results NDJSON result stream (?from=K resumes)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/processes         registered processes and graph kinds
//	GET    /healthz              liveness probe
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight jobs are
// cancelled and open streams are closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dispersion/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxJobs       = flag.Int("max-jobs", 2, "jobs running concurrently; further submissions queue")
		engineWorkers = flag.Int("engine-workers", 0, "per-job engine workers (0 = one per core; never affects results)")
		resultsDir    = flag.String("results-dir", "", "archive every job's trials as <dir>/<job>.jsonl (empty = off)")
		evict         = flag.Bool("evict-consumed", false, "drop a job's in-memory results once it is terminal and its stream was fully consumed (re-reads answer 410)")
	)
	flag.Parse()

	if *resultsDir != "" {
		if err := os.MkdirAll(*resultsDir, 0o755); err != nil {
			log.Fatalf("dispersion-server: %v", err)
		}
	}
	m := server.NewManager(server.ManagerOptions{
		MaxConcurrent: *maxJobs,
		EngineWorkers: *engineWorkers,
		ResultsDir:    *resultsDir,
		EvictConsumed: *evict,
	})
	srv := &http.Server{Addr: *addr, Handler: server.New(m)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Print("dispersion-server: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			srv.Close()
		}
	}()

	fmt.Printf("dispersion-server: listening on %s (max %d concurrent jobs)\n", *addr, *maxJobs)
	err := srv.ListenAndServe()
	// Cancel jobs after the listener stops accepting work, then wait for
	// the workers so JSONL archives are complete on exit — and for the
	// graceful Shutdown, so open result streams get their X-Job-State
	// trailer instead of an abrupt reset.
	m.Close()
	stop()
	<-shutdownDone
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("dispersion-server: %v", err)
	}
}
