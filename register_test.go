package dispersion_test

import (
	"strings"
	"testing"

	"dispersion"
)

// stubProcess is a minimal Process for registry collision tests.
type stubProcess struct{ name string }

func (p stubProcess) Name() string   { return p.name }
func (stubProcess) Continuous() bool { return false }
func (stubProcess) Run(dispersion.Graph, int, *dispersion.Source, ...dispersion.Option) (*dispersion.Result, error) {
	return nil, nil
}

// RegisterErr must reject any collision with a descriptive error and leave
// the registry untouched — including when the collision is on an alias, so
// no partial registration survives.
func TestRegisterErrCollision(t *testing.T) {
	before := dispersion.Processes()

	// Canonical-name collision.
	err := dispersion.RegisterErr(stubProcess{name: "sequential"})
	if err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Fatalf("canonical collision: err = %v, want a descriptive duplicate error", err)
	}

	// Alias collision: the canonical name is free, the alias is taken.
	// Nothing — not even the free canonical name — may be registered.
	err = dispersion.RegisterErr(stubProcess{name: "collision-test-process"}, "cap")
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("alias collision: err = %v, want a descriptive duplicate error", err)
	}
	if _, lookupErr := dispersion.Lookup("collision-test-process"); lookupErr == nil {
		t.Error("alias collision left the canonical name partially registered")
	}

	// A name repeated within one registration is rejected up front.
	err = dispersion.RegisterErr(stubProcess{name: "collision-test-process"}, "collision-test-process")
	if err == nil || !strings.Contains(err.Error(), "repeats") {
		t.Fatalf("self-duplicate: err = %v, want a repeats error", err)
	}
	if _, lookupErr := dispersion.Lookup("collision-test-process"); lookupErr == nil {
		t.Error("self-duplicate left the name registered")
	}

	if after := dispersion.Processes(); len(after) != len(before) {
		t.Errorf("failed registrations changed Processes(): %d -> %d names", len(before), len(after))
	}
}

// Register stays the panicking wrapper over RegisterErr.
func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Register on a duplicate name did not panic")
		}
	}()
	dispersion.Register(stubProcess{name: "parallel"})
}
