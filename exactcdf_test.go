package dispersion_test

// Exact dispersion-CDF comparisons for the variant options — the PR-4
// follow-up: not just expectations but the full makespan CDFs from
// internal/exact, checked against empirical CDFs produced by the engine
// hot path. Every comparison is deterministic under its fixed seed; the
// sup-norm tolerance is far outside the DKW band for the sample size
// (P(sup|F̂-F| > 0.04) < 1e-6 at N = 6000), so a failure means a real
// distributional bug, not noise.

import (
	"context"
	"math"
	"testing"

	"dispersion"
	"dispersion/internal/exact"
	"dispersion/internal/graph"
)

// cdfTrials is the Monte-Carlo sample size per CDF comparison.
const cdfTrials = 6000

// cdfTol is the allowed sup-norm deviation between empirical and exact
// CDFs.
const cdfTol = 0.04

// sampleMakespans collects the per-trial makespans of a job through
// Engine.Sample (which runs the ReuseResults hot path).
func sampleMakespans(t *testing.T, job dispersion.Job, seed uint64) []float64 {
	t.Helper()
	xs, err := dispersion.Engine{Seed: seed, Experiment: 23}.Sample(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	return xs
}

// checkCDF compares the empirical CDF of xs against the exact cdf on the
// integer grid 0..len(cdf)-1 in sup norm, and requires the exact horizon
// to carry essentially all mass so the truncation cannot hide divergence.
func checkCDF(t *testing.T, name string, xs []float64, cdf []float64) {
	t.Helper()
	T := len(cdf) - 1
	if tail := 1 - cdf[T]; tail > 1e-6 {
		t.Fatalf("%s: exact horizon %d leaves tail mass %g", name, T, tail)
	}
	counts := make([]int, T+1)
	for _, x := range xs {
		xi := int(x)
		if float64(xi) != x || xi < 0 {
			t.Fatalf("%s: non-integer makespan %v in a discrete process", name, x)
		}
		if xi <= T {
			counts[xi]++
		}
	}
	var cum int
	var worst float64
	worstT := -1
	for tt := 0; tt <= T; tt++ {
		cum += counts[tt]
		emp := float64(cum) / float64(len(xs))
		if d := math.Abs(emp - cdf[tt]); d > worst {
			worst, worstT = d, tt
		}
	}
	if worst > cdfTol {
		t.Errorf("%s: sup|empirical - exact| = %.4f at t=%d (tolerance %.3f)",
			name, worst, worstT, cdfTol)
	}
}

// seqCDF computes the exact dispersion CDF of a Sequential variant with an
// adaptive horizon: doubled until the tail mass is negligible.
func seqCDF(t *testing.T, g *graph.CSR, v exact.SeqVariant) []float64 {
	t.Helper()
	for T := 256; T <= 8192; T *= 2 {
		cdf, err := exact.SeqDispersionCDF(g, 0, v, T)
		if err != nil {
			t.Fatal(err)
		}
		if 1-cdf[T] < 1e-9 {
			return cdf
		}
	}
	t.Fatal("exact CDF did not converge within the horizon cap")
	return nil
}

// capacityCDF is seqCDF for the capacity process.
func capacityCDF(t *testing.T, g *graph.CSR, c, k int) []float64 {
	t.Helper()
	for T := 256; T <= 8192; T *= 2 {
		cdf, err := exact.CapacityDispersionCDF(g, 0, c, k, T)
		if err != nil {
			t.Fatal(err)
		}
		if 1-cdf[T] < 1e-9 {
			return cdf
		}
	}
	t.Fatal("exact capacity CDF did not converge within the horizon cap")
	return nil
}

// TestExactCDFVariantOptions compares full makespan CDFs for the variant
// options of the plain Sequential process (WithLazy, WithParticles,
// WithRandomOrigins, and their combination) on K_5 and the star.
func TestExactCDFVariantOptions(t *testing.T) {
	for gi, tc := range propGraphs() {
		n := tc.g.N()
		cases := []struct {
			name    string
			variant exact.SeqVariant
			opts    []dispersion.Option
		}{
			{"plain", exact.SeqVariant{}, nil},
			{"lazy", exact.SeqVariant{Rule: exact.Rule{Lazy: true}},
				[]dispersion.Option{dispersion.WithLazy()}},
			{"particles", exact.SeqVariant{Particles: n - 1},
				[]dispersion.Option{dispersion.WithParticles(n - 1)}},
			{"random-origins", exact.SeqVariant{RandomOrigins: true},
				[]dispersion.Option{dispersion.WithRandomOrigins()}},
			{"lazy+particles+random-origins",
				exact.SeqVariant{Rule: exact.Rule{Lazy: true}, Particles: n - 1, RandomOrigins: true},
				[]dispersion.Option{
					dispersion.WithLazy(), dispersion.WithParticles(n - 1), dispersion.WithRandomOrigins(),
				}},
		}
		for ci, c := range cases {
			cdf := seqCDF(t, tc.g, c.variant)
			xs := sampleMakespans(t, dispersion.Job{
				Process: "sequential", Graph: tc.g, Trials: cdfTrials, Options: c.opts,
			}, uint64(301+10*gi+ci))
			checkCDF(t, tc.name+"/"+c.name, xs, cdf)
		}
	}
}

// TestExactCDFSettleRules compares full makespan CDFs for the registered
// settle-rule processes on K_5 and the star.
func TestExactCDFSettleRules(t *testing.T) {
	for gi, tc := range propGraphs() {
		cases := []struct {
			name    string
			process string
			rule    exact.Rule
			opts    []dispersion.Option
		}{
			{"geom-0.6", "sequential-geom", exact.Rule{Kind: exact.RuleGeom, Q: 0.6},
				[]dispersion.Option{dispersion.WithSettleParam(0.6)}},
			{"threshold-3", "sequential-threshold", exact.Rule{Kind: exact.RuleThreshold, T: 3},
				[]dispersion.Option{dispersion.WithSettleParam(3)}},
		}
		for ci, c := range cases {
			cdf := seqCDF(t, tc.g, exact.SeqVariant{Rule: c.rule})
			xs := sampleMakespans(t, dispersion.Job{
				Process: c.process, Graph: tc.g, Trials: cdfTrials, Options: c.opts,
			}, uint64(401+10*gi+ci))
			checkCDF(t, tc.name+"/"+c.name, xs, cdf)
		}
	}
}

// TestExactCDFCapacity compares the capacity process's full makespan CDF
// against the occupancy-multiset DP.
func TestExactCDFCapacity(t *testing.T) {
	for gi, tc := range propGraphs() {
		cdf := capacityCDF(t, tc.g, 2, 0)
		xs := sampleMakespans(t, dispersion.Job{
			Process: "capacity", Graph: tc.g, Trials: cdfTrials,
		}, uint64(501+gi))
		checkCDF(t, tc.name+"/capacity", xs, cdf)
	}
}
