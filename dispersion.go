// Package dispersion is the public facade over this repository's
// reproduction of Rivera, Sauerwald, Stauffer and Sylvester, "The
// Dispersion Time of Random Walks on Finite Graphs" (SPAA 2019).
//
// It unifies the internal simulation machinery behind one composable API:
//
//   - a Process interface with a string-keyed registry covering the
//     paper's five process variants (Sequential-, Parallel- and
//     Uniform-IDLA plus the continuous-time Uniform and Sequential
//     processes), the Proposition A.1 settle-rule variants
//     (sequential-geom, sequential-threshold), the capacity-c
//     load-balancing processes (capacity, capacity-parallel), and the
//     lazy variant of each;
//   - functional options (WithLazy, WithParticles, WithRandomOrigins,
//     WithRecord, WithSettleRule, WithSettleParam, WithCapacity,
//     WithMaxSteps, WithRandomPriority) configuring a run;
//   - a single merged Result type covering both the discrete and the
//     continuous-time processes;
//   - an Engine that composes graph-spec parsing (package
//     dispersion/graphspec), the deterministic split-stream trial runner,
//     context cancellation, and streaming per-trial delivery, so
//     million-trial experiments run on all cores without buffering and
//     still reproduce bit-for-bit for any worker count.
//
// One-shot runs go through Run:
//
//	g, _ := graphspec.Build("complete:128", 1)
//	res, _ := dispersion.Run("sequential", g, 0, 1, dispersion.WithRecord())
//	fmt.Println(res.Dispersion)
//
// Many-trial experiments go through Engine.Run or Engine.Sample:
//
//	eng := dispersion.Engine{Seed: 1}
//	xs, _ := eng.Sample(ctx, dispersion.Job{Process: "parallel", Spec: "torus:32x32", Trials: 10000})
//
// Determinism: every run is a pure function of (graph, origin, seed,
// options). Engine trial i always draws from the split stream
// (seed, experiment, i), so results do not depend on GOMAXPROCS or
// scheduling order.
package dispersion

import (
	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// Graph is the finite simple graph every process walks on. Build one from
// a textual family spec with the dispersion/graphspec package, or directly
// with the constructors in internal/graph re-exported by that package.
type Graph = graph.Graph

// Source is the deterministic splittable random source driving every
// simulation (xoshiro256** seeded through splitmix64).
type Source = rng.Source

// NewSource returns a Source rooted at the given seed. Equal seeds yield
// identical streams.
func NewSource(seed uint64) *Source { return rng.New(seed) }

// SettleRule decides whether a particle standing on a vacant vertex
// settles there; see WithSettleRule.
type SettleRule = core.SettleRule

// Odometer accumulates per-vertex visit counts over a recorded run — the
// IDLA literature's odometer function.
type Odometer = core.Odometer

// NewOdometer derives the odometer of a run produced with WithRecord.
func NewOdometer(g Graph, res *Result) (*Odometer, error) {
	return core.NewOdometer(g, res.core())
}

// Run looks up a registered process by name and executes one realization
// on g from the given origin, rooted at the given seed. It is the
// one-shot convenience over Lookup and Process.Run.
func Run(process string, g Graph, origin int, seed uint64, opts ...Option) (*Result, error) {
	p, err := Lookup(process)
	if err != nil {
		return nil, err
	}
	return p.Run(g, origin, NewSource(seed), opts...)
}
