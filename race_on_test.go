//go:build race

package dispersion_test

// raceEnabled reports that this test binary was built with the race
// detector, under which sync.Pool intentionally drops items and
// allocation accounting is not meaningful.
const raceEnabled = true
